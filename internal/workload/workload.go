// Package workload generates the request patterns the paper's
// experiments exercise: permutation routing (§2.2.1's paradigmatic
// case), partial h-relations, many-one hot spots (the CRCW combining
// stress of Theorem 2.6), and the distance-d local memory requests of
// Theorem 3.3. Generators produce either routing packets or PRAM
// memory-request vectors, all deterministically from a seed.
//
// Every packet generator is also registered in this package's
// name-keyed registry (registry.go), the workload twin of the
// topology registry: commands, scenario sweeps and benchmarks select
// traffic by name through Generate, which gates each generator on the
// capabilities the target topology actually has.
package workload

import (
	"fmt"

	"pramemu/internal/packet"
	"pramemu/internal/pram"
	"pramemu/internal/prng"
)

// Grid is the structural surface of the n x n mesh this package
// needs: the mesh-package adapter through which the grid-specific
// generators (Transpose, MeshLocal) see the topology without this
// package importing internal/mesh. *mesh.Grid satisfies it; callers
// outside the mesh experiments should reach these generators through
// the registry's capability gates instead of passing grids directly.
type Grid interface {
	Side() int
	Nodes() int
	RowCol(node int) (row, col int)
	Node(row, col int) int
}

// Permutation returns packets realizing a uniformly random permutation:
// one packet at every node, destinations a random permutation.
func Permutation(nodes int, kind packet.Kind, seed uint64) []*packet.Packet {
	return PermutationInto(nil, nodes, kind, seed)
}

// PermutationInto is Permutation with packets allocated from arena a
// (heap-allocated when a is nil), so repeated trials recycle one slab
// arena via Reset instead of scattering a fresh heap object per
// packet per trial.
func PermutationInto(a *packet.Arena, nodes int, kind packet.Kind, seed uint64) []*packet.Packet {
	perm := prng.New(seed).Perm(nodes)
	pkts := make([]*packet.Packet, nodes)
	for i, dst := range perm {
		pkts[i] = packet.NewIn(a, i, i, dst, kind)
	}
	return pkts
}

// Identity returns packets from every node to itself (a degenerate
// permutation exercising zero-distance handling).
func Identity(nodes int, kind packet.Kind) []*packet.Packet {
	return IdentityInto(nil, nodes, kind)
}

// IdentityInto is Identity with packets allocated from arena a
// (heap-allocated when a is nil).
func IdentityInto(a *packet.Arena, nodes int, kind packet.Kind) []*packet.Packet {
	pkts := make([]*packet.Packet, nodes)
	for i := range pkts {
		pkts[i] = packet.NewIn(a, i, i, i, kind)
	}
	return pkts
}

// BitReversal returns the bit-reversal permutation on nodes = 2^k,
// the classic adversarial pattern for deterministic oblivious routing.
// It panics if nodes is not a power of two.
func BitReversal(nodes int, kind packet.Kind) []*packet.Packet {
	return BitReversalInto(nil, nodes, kind)
}

// BitReversalInto is BitReversal with packets allocated from arena a
// (heap-allocated when a is nil).
func BitReversalInto(a *packet.Arena, nodes int, kind packet.Kind) []*packet.Packet {
	k := log2Exact(nodes, "BitReversal")
	pkts := make([]*packet.Packet, nodes)
	for i := 0; i < nodes; i++ {
		rev := 0
		for b := 0; b < k; b++ {
			rev = rev<<1 | (i >> b & 1)
		}
		pkts[i] = packet.NewIn(a, i, i, rev, kind)
	}
	return pkts
}

// BitComplement returns the bit-complement permutation on nodes =
// 2^k: node i sends to ^i, the all-bits-flipped node. Every packet
// must cross every dimension, making the pattern the maximal-distance
// adversary on the binary families (the complement of shift's
// minimal-distance traffic). It panics if nodes is not a power of two.
func BitComplement(nodes int, kind packet.Kind) []*packet.Packet {
	return BitComplementInto(nil, nodes, kind)
}

// BitComplementInto is BitComplement with packets allocated from
// arena a (heap-allocated when a is nil).
func BitComplementInto(a *packet.Arena, nodes int, kind packet.Kind) []*packet.Packet {
	log2Exact(nodes, "BitComplement")
	pkts := make([]*packet.Packet, nodes)
	for i := 0; i < nodes; i++ {
		pkts[i] = packet.NewIn(a, i, i, nodes-1-i, kind)
	}
	return pkts
}

// log2Exact returns k with 2^k == nodes, panicking when nodes is not
// a power of two (the shared precondition of the bit permutations).
func log2Exact(nodes int, generator string) int {
	k := 0
	for 1<<k < nodes {
		k++
	}
	if nodes < 1 || 1<<k != nodes {
		panic(fmt.Sprintf("workload: %s needs a power-of-two node count, got %d", generator, nodes))
	}
	return k
}

// Shift returns the neighbor permutation: node i sends to i+1 mod
// nodes, the minimal-distance traffic that measures per-hop overhead
// with no congestion at all.
func Shift(nodes int, kind packet.Kind) []*packet.Packet {
	return ShiftInto(nil, nodes, kind)
}

// ShiftInto is Shift with packets allocated from arena a
// (heap-allocated when a is nil).
func ShiftInto(a *packet.Arena, nodes int, kind packet.Kind) []*packet.Packet {
	pkts := make([]*packet.Packet, nodes)
	for i := 0; i < nodes; i++ {
		pkts[i] = packet.NewIn(a, i, i, (i+1)%nodes, kind)
	}
	return pkts
}

// Relation returns packets realizing a partial h-relation: h packets
// at every node, at most h destined to any node (h independent random
// permutations; Theorem 2.4's workload with h = ℓ).
func Relation(nodes, h int, kind packet.Kind, seed uint64) []*packet.Packet {
	return RelationInto(nil, nodes, h, kind, seed)
}

// RelationInto is Relation with packets allocated from arena a
// (heap-allocated when a is nil).
func RelationInto(a *packet.Arena, nodes, h int, kind packet.Kind, seed uint64) []*packet.Packet {
	src := prng.New(seed)
	pkts := make([]*packet.Packet, 0, nodes*h)
	id := 0
	for rel := 0; rel < h; rel++ {
		perm := src.Perm(nodes)
		for i, dst := range perm {
			pkts = append(pkts, packet.NewIn(a, id, i, dst, kind))
			id++
		}
	}
	return pkts
}

// HotSpot returns request packets of the given kind where a
// `fraction` (in [0,1]) of nodes target one shared address and the
// rest touch private addresses — the many-one pattern that CRCW
// combining collapses. Non-request kinds are promoted to ReadRequest
// so the packets always carry a memory operation.
func HotSpot(nodes int, fraction float64, hotDst int, kind packet.Kind, seed uint64) []*packet.Packet {
	return HotSpotInto(nil, nodes, fraction, hotDst, kind, seed)
}

// HotSpotInto is HotSpot with packets allocated from arena a
// (heap-allocated when a is nil).
func HotSpotInto(a *packet.Arena, nodes int, fraction float64, hotDst int, kind packet.Kind, seed uint64) []*packet.Packet {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("workload: hot-spot fraction %v out of [0,1]", fraction))
	}
	kind = requestKind(kind)
	src := prng.New(seed)
	pkts := make([]*packet.Packet, nodes)
	const hotAddr = 0
	for i := 0; i < nodes; i++ {
		p := packet.NewIn(a, i, i, hotDst, kind)
		p.Proc = i
		if src.Float64() < fraction {
			p.Addr = hotAddr
			p.Dst = hotDst
		} else {
			p.Addr = uint64(nodes + i) // private address
			p.Dst = src.Intn(nodes)
		}
		pkts[i] = p
	}
	return pkts
}

// KHot returns the many-to-one k-hot-spot pattern: `hot` shared
// destinations are drawn from the seed, and every node sends a
// request of the given kind to one of them — with probability
// `fraction` to the hot address shared by that destination (so
// combining trees form en route, Theorem 2.6), otherwise to a private
// address at the same destination. A generalization of HotSpot from
// one hot module to k, runnable on any registered family.
func KHot(nodes, hot int, fraction float64, kind packet.Kind, seed uint64) []*packet.Packet {
	return KHotInto(nil, nodes, hot, fraction, kind, seed)
}

// KHotInto is KHot with packets allocated from arena a
// (heap-allocated when a is nil).
func KHotInto(a *packet.Arena, nodes, hot int, fraction float64, kind packet.Kind, seed uint64) []*packet.Packet {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("workload: k-hot-spot fraction %v out of [0,1]", fraction))
	}
	if hot < 1 {
		panic(fmt.Sprintf("workload: k-hot-spot needs at least one hot destination, got %d", hot))
	}
	if hot > nodes {
		hot = nodes
	}
	kind = requestKind(kind)
	src := prng.New(seed)
	// Distinct hot destinations, drawn deterministically.
	hotDsts := make([]int, 0, hot)
	used := make(map[int]bool, hot)
	for len(hotDsts) < hot {
		d := src.Intn(nodes)
		if !used[d] {
			used[d] = true
			hotDsts = append(hotDsts, d)
		}
	}
	pkts := make([]*packet.Packet, nodes)
	for i := 0; i < nodes; i++ {
		j := src.Intn(hot)
		p := packet.NewIn(a, i, i, hotDsts[j], kind)
		p.Proc = i
		if src.Float64() < fraction {
			p.Addr = uint64(j) // address shared by everyone hitting this hot spot
		} else {
			p.Addr = uint64(nodes + i) // private address at a hot module
		}
		pkts[i] = p
	}
	return pkts
}

// requestKind promotes non-request kinds to ReadRequest: the many-one
// generators always emit memory operations so combining has an
// address to merge on.
func requestKind(kind packet.Kind) packet.Kind {
	if !kind.IsRequest() {
		return packet.ReadRequest
	}
	return kind
}

// Requests converts routing packets into a PRAM request vector, one
// request per source node; nodes without packets idle. Used to feed
// the emulator with synthetic (non-program) steps.
func Requests(nodes int, pkts []*packet.Packet) []pram.Request {
	reqs := make([]pram.Request, nodes)
	for i := range reqs {
		reqs[i] = pram.Request{Proc: i, Op: pram.OpNone}
	}
	for _, p := range pkts {
		op := pram.OpRead
		if p.Kind == packet.WriteRequest {
			op = pram.OpWrite
		}
		reqs[p.Src] = pram.Request{Proc: p.Src, Op: op, Addr: p.Addr, Value: p.Value}
	}
	return reqs
}

// StepRequests converts one registered workload's packets into the
// request vector of the equivalent emulated PRAM step, one request
// per source node (idle processors issue OpNone). The traffic class
// decides where the step's addresses come from:
//
//   - many-one generators (hotspot, khot) carry explicit shared and
//     private addresses on their packets, so those are used verbatim —
//     the combining pattern of Theorem 2.6;
//   - every other class reads the packet's destination as the address
//     (processor i touches address Dst(i)), so a permutation-class
//     pattern becomes an EREW-legal step (bijective destinations →
//     distinct addresses) and a local pattern a distance-bounded one.
//
// Note the emulator then hashes each address to its memory module, so
// an adversarial destination pattern (bitrev, tornado) loses its
// geometric structure — which is exactly the point of Theorems 2.5
// and 2.6: hashing makes the step cost pattern-independent.
func StepRequests(class Class, nodes int, pkts []*packet.Packet) []pram.Request {
	if class == ClassManyOne {
		return Requests(nodes, pkts)
	}
	reqs := make([]pram.Request, nodes)
	for i := range reqs {
		reqs[i] = pram.Request{Proc: i, Op: pram.OpNone}
	}
	for _, p := range pkts {
		op := pram.OpRead
		if p.Kind == packet.WriteRequest {
			op = pram.OpWrite
		}
		reqs[p.Src] = pram.Request{Proc: p.Src, Op: op, Addr: uint64(p.Dst), Value: p.Value}
	}
	return reqs
}

// RandomStep returns a PRAM request vector in which every processor
// touches a distinct random address (an EREW-legal step): the
// workload of Theorems 2.5 and 3.2. Addresses are drawn from
// [0, memory) without replacement.
func RandomStep(procs int, memory uint64, write bool, seed uint64) []pram.Request {
	if uint64(procs) > memory {
		panic("workload: more processors than addresses for an EREW step")
	}
	src := prng.New(seed)
	used := make(map[uint64]bool, procs)
	reqs := make([]pram.Request, procs)
	for i := 0; i < procs; i++ {
		var a uint64
		for {
			a = src.Uint64n(memory)
			if !used[a] {
				used[a] = true
				break
			}
		}
		op := pram.OpRead
		if write {
			op = pram.OpWrite
		}
		reqs[i] = pram.Request{Proc: i, Op: op, Addr: a, Value: int64(i)}
	}
	return reqs
}

// CRCWStep returns a request vector in which all processors read the
// same single address — the fully concurrent step that exercises
// Theorem 2.6's combining.
func CRCWStep(procs int, addr uint64) []pram.Request {
	reqs := make([]pram.Request, procs)
	for i := range reqs {
		reqs[i] = pram.Request{Proc: i, Op: pram.OpRead, Addr: addr}
	}
	return reqs
}

// MeshLocal returns packets on grid g whose destinations lie within
// L1 distance d of their sources (Theorem 3.3's workload), one packet
// per node, destinations clamped by reflection at the borders.
func MeshLocal(g Grid, d int, seed uint64) []*packet.Packet {
	return MeshLocalInto(nil, g, d, seed)
}

// MeshLocalInto is MeshLocal with packets allocated from arena a
// (heap-allocated when a is nil).
func MeshLocalInto(a *packet.Arena, g Grid, d int, seed uint64) []*packet.Packet {
	if d < 1 {
		panic("workload: locality distance must be >= 1")
	}
	src := prng.New(seed)
	n := g.Side()
	pkts := make([]*packet.Packet, g.Nodes())
	for node := 0; node < g.Nodes(); node++ {
		r, c := g.RowCol(node)
		dr := reflect(r+src.Intn(2*d+1)-d, n)
		rem := d - abs(dr-r)
		dc := reflect(c+src.Intn(2*rem+1)-rem, n)
		pkts[node] = packet.NewIn(a, node, node, g.Node(dr, dc), packet.Transit)
	}
	return pkts
}

func reflect(x, n int) int {
	if x < 0 {
		x = -x
	}
	if x >= n {
		x = 2*n - 2 - x
	}
	return x
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Transpose returns the mesh transpose permutation (r, c) -> (c, r),
// the adversarial pattern for greedy dimension-ordered mesh routing.
func Transpose(g Grid) []*packet.Packet {
	return TransposeInto(nil, g)
}

// TransposeInto is Transpose with packets allocated from arena a
// (heap-allocated when a is nil).
func TransposeInto(a *packet.Arena, g Grid) []*packet.Packet {
	n := g.Side()
	pkts := make([]*packet.Packet, 0, g.Nodes())
	id := 0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			pkts = append(pkts, packet.NewIn(a, id, g.Node(r, c), g.Node(c, r), packet.Transit))
			id++
		}
	}
	return pkts
}

// IsSquare reports whether nodes is a perfect square (the
// TransposeSquare precondition).
func IsSquare(nodes int) bool {
	s := side(nodes)
	return s > 0 && s*s == nodes
}

func side(nodes int) int {
	s := 0
	for (s+1)*(s+1) <= nodes {
		s++
	}
	return s
}

// TransposeSquare returns the transpose permutation on any square
// node count: with s = √nodes, node r*s + c sends to node c*s + r.
// On tori and meshes this is the classic adversarial pattern for
// dimension-ordered routing (every packet crosses the main diagonal,
// complementing the bit-reversal permutation on the binary families).
// It panics unless nodes is a perfect square.
func TransposeSquare(nodes int, kind packet.Kind) []*packet.Packet {
	return TransposeSquareInto(nil, nodes, kind)
}

// TransposeSquareInto is TransposeSquare with packets allocated from
// arena a (heap-allocated when a is nil).
func TransposeSquareInto(a *packet.Arena, nodes int, kind packet.Kind) []*packet.Packet {
	if !IsSquare(nodes) {
		panic(fmt.Sprintf("workload: TransposeSquare needs a square node count, got %d", nodes))
	}
	s := side(nodes)
	pkts := make([]*packet.Packet, nodes)
	for node := 0; node < nodes; node++ {
		r, c := node/s, node%s
		pkts[node] = packet.NewIn(a, node, node, c*s+r, kind)
	}
	return pkts
}
