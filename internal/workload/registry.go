// The workload registry: the traffic-class twin of the topology
// registry. Every packet generator in this package registers itself
// under a name, declares the traffic class it realizes (the paper's
// theorems are claims over classes — permutations for Thm 2.1/2.2,
// h-relations for Cor 2.1, many-one request steps for Thm 2.6,
// distance-d-local requests for Thm 3.3) and the capabilities it
// needs from the topology, and is then selected by name through
// Generate — so commands, scenario sweeps and benchmarks pick up a
// new generator with zero cross-cutting edits.

package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pramemu/internal/packet"
	"pramemu/internal/topology"
)

// Class is the traffic class a generator realizes; the conformance
// suite derives its property checks (packet counts, bijectivity) from
// it, and routers use it to pick a dispatch path (the mesh's
// specialized §3.4 router handles permutation-class and local
// traffic; everything else routes generically).
type Class uint8

const (
	// ClassPermutation is one packet per node with bijective
	// destinations (perm, ident, bitrev, bitcomp, shift, transpose,
	// tornado).
	ClassPermutation Class = iota
	// ClassRelation is a partial h-relation: h packets per node, at
	// most h to any destination.
	ClassRelation
	// ClassManyOne is many-to-one request traffic (hotspot, khot),
	// the CRCW combining stress of Theorem 2.6.
	ClassManyOne
	// ClassLocal is one packet per node with a distance-bounded
	// destination (Theorem 3.3).
	ClassLocal
)

// String implements fmt.Stringer for reports and -list output.
func (c Class) String() string {
	switch c {
	case ClassPermutation:
		return "permutation"
	case ClassRelation:
		return "relation"
	case ClassManyOne:
		return "many-one"
	case ClassLocal:
		return "local"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Needs is the bitmask of capabilities a generator requires from the
// topology (or, for NeedsCombining, advertises to the router).
type Needs uint8

const (
	// NeedsSquare requires a perfect-square node count (transpose).
	NeedsSquare Needs = 1 << iota
	// NeedsPow2 requires a power-of-two node count (bitrev, bitcomp).
	NeedsPow2
	// NeedsGraph requires a point-to-point graph view — leveled-only
	// families (butterfly) cannot realize it (local's BFS ball).
	NeedsGraph
	// NeedsCoords requires the topology.Coordinated capability
	// (tornado's half-wrap).
	NeedsCoords
	// NeedsCombining advertises many-one traffic: the router should
	// enable CRCW combining (Theorem 2.6) when routing it. It is not
	// a topology requirement — Check ignores it.
	NeedsCombining
)

// String renders the capability set for -list output.
func (n Needs) String() string {
	var parts []string
	for _, b := range []struct {
		bit  Needs
		name string
	}{
		{NeedsSquare, "square"},
		{NeedsPow2, "pow2"},
		{NeedsGraph, "graph"},
		{NeedsCoords, "coords"},
		{NeedsCombining, "combining"},
	} {
		if n&b.bit != 0 {
			parts = append(parts, b.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// Params carries the knobs of a Generate call. Generators map them
// onto their natural parameters and substitute documented defaults
// for zero values, so `Generate(name, b, Params{}, ...)` always works.
type Params struct {
	// Kind is the packet kind for transit-class generators; the
	// many-one generators promote it to ReadRequest unless it is
	// already a request kind.
	Kind packet.Kind
	// H is the h-relation height (default 2).
	H int
	// D is the locality distance (default 4).
	D int
	// Fraction is the hot fraction of the many-one generators, in
	// [0, 1] (default 0.5; the zero value selects the default, so an
	// all-cold run is expressed as a tiny positive fraction).
	Fraction float64
	// Hot is the hot-destination count of khot (default 4).
	Hot int
}

// Defaulted returns p with documented defaults substituted for zero
// values — the exact parameters a Generate call will run with.
func (p Params) Defaulted() Params {
	if p.H < 1 {
		p.H = 2
	}
	if p.D < 1 {
		p.D = 4
	}
	if p.Fraction == 0 {
		p.Fraction = 0.5
	}
	if p.Hot < 1 {
		p.Hot = 4
	}
	return p
}

// Generator is one registered workload family.
type Generator struct {
	// Name keys the registry (the -workload flag value).
	Name string
	// Params documents which Params fields the generator reads.
	Params string
	// Class is the traffic class the generator realizes.
	Class Class
	// Traffic names the paper claim the class exercises (recorded in
	// DESIGN.md's index).
	Traffic string
	// Needs are the capabilities required of the topology.
	Needs Needs
	// Nodes, when non-zero, pins the generator to topologies with
	// exactly that node count — the gate of frozen adversarial
	// permutations, whose destination table is meaningful only on the
	// instance the search found it on.
	Nodes int
	// Generate realizes the workload on the built topology. Packets
	// are allocated from arena a when non-nil. Parameters arrive
	// pre-defaulted; the topology has passed Check.
	Generate func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error)
}

// Check reports whether the generator can realize its traffic on b,
// naming the missing capability otherwise — the error -sweep and
// routebench surface for incompatible (family, workload) pairs.
func (g Generator) Check(b topology.Built) error {
	nodes := b.Nodes()
	if g.Nodes != 0 && nodes != g.Nodes {
		return fmt.Errorf("workload %s is pinned to %d nodes; %s has %d", g.Name, g.Nodes, b.Name(), nodes)
	}
	if g.Needs&NeedsSquare != 0 && !IsSquare(nodes) {
		return fmt.Errorf("workload %s needs a square node count; %s has %d nodes", g.Name, b.Name(), nodes)
	}
	if g.Needs&NeedsPow2 != 0 && (nodes < 1 || nodes&(nodes-1) != 0) {
		return fmt.Errorf("workload %s needs a power-of-two node count; %s has %d nodes", g.Name, b.Name(), nodes)
	}
	if g.Needs&(NeedsGraph|NeedsCoords) != 0 && b.Graph == nil {
		return fmt.Errorf("workload %s needs a point-to-point graph view; %s is leveled-only", g.Name, b.Name())
	}
	if g.Needs&NeedsCoords != 0 {
		if _, ok := b.Graph.(topology.Coordinated); !ok {
			return fmt.Errorf("workload %s needs grid coordinates; %s does not implement topology.Coordinated", g.Name, b.Name())
		}
	}
	return nil
}

var (
	mu         sync.RWMutex
	generators = map[string]Generator{}
)

// Register adds a generator to the registry. It panics on a duplicate
// name: two generators claiming one name is a programming error.
func Register(g Generator) {
	mu.Lock()
	defer mu.Unlock()
	if g.Name == "" || g.Generate == nil {
		panic("workload: Register needs a name and a Generate function")
	}
	if _, dup := generators[g.Name]; dup {
		panic(fmt.Sprintf("workload: generator %q registered twice", g.Name))
	}
	generators[g.Name] = g
}

// Lookup returns the named generator.
func Lookup(name string) (Generator, bool) {
	mu.RLock()
	defer mu.RUnlock()
	g, ok := generators[name]
	return g, ok
}

// Names returns every registered generator name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(generators))
	for name := range generators {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Generate realizes the named workload on b: it resolves the
// generator, gates it on the topology's capabilities, applies the
// parameter defaults and runs it. The error lists the known
// generators when the name is unknown, so -workload typos come back
// actionable.
func Generate(name string, b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
	g, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (known: %v)", name, Names())
	}
	if err := g.Check(b); err != nil {
		return nil, err
	}
	p = p.Defaulted()
	if p.Fraction < 0 || p.Fraction > 1 {
		return nil, fmt.Errorf("workload %s: fraction %v out of [0,1]", name, p.Fraction)
	}
	return g.Generate(b, p, a, seed)
}
