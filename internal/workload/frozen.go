// Frozen adversarial workloads: permutations the adversarial search
// (internal/advsearch) found to be worst cases, checked in under
// sweeps/adversarial/ as compact encoded files and registered here as
// named generators ("adv:<family>:<name>"). A frozen workload is a
// literal destination table pinned to the node count it was found on,
// so the registry's capability gate (Generator.Nodes) refuses every
// other instance. Registration is idempotent — loading one directory
// from several tests in one binary is a no-op after the first — and
// the decode path never panics on hostile bytes (FuzzFrozenWorkload).

package workload

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pramemu/internal/packet"
	"pramemu/internal/topology"
)

// Frozen is one checked-in adversarial permutation: the identifying
// topology instance, the provenance of the search that found it, the
// worst metrics it achieved (the floor its regression test enforces),
// and the destination table itself. The JSON-visible fields form the
// file header; Perm is stored as varints after it.
type Frozen struct {
	// Name distinguishes adversaries of one family ("g16", "seed774").
	Name string `json:"name"`
	// Family/N/K name the topology instance the permutation was found
	// on; Nodes is its node count (= len(Perm)).
	Family string `json:"family"`
	N      int    `json:"n"`
	K      int    `json:"k,omitempty"`
	Nodes  int    `json:"nodes"`
	// Seed and Trials reproduce the evaluation that recorded the
	// metrics below (scenario.Cell{Seed: Seed, Trials: Trials}).
	Seed   uint64 `json:"seed"`
	Trials int    `json:"trials"`
	// Rounds and MaxQ are the worst observed metrics at freeze time —
	// the regression floor: the engine must still achieve at least
	// these on the recorded instance, or it has silently "fixed" the
	// adversary.
	Rounds int `json:"rounds"`
	MaxQ   int `json:"max_q"`
	// Note records how the search found the permutation.
	Note string `json:"note,omitempty"`
	// Perm is the destination table: node i sends to Perm[i].
	Perm []int `json:"-"`
}

// WorkloadName is the registry name the frozen permutation routes
// under: "adv:<family>:<name>".
func (f Frozen) WorkloadName() string {
	return "adv:" + f.Family + ":" + f.Name
}

// FrozenExt is the file extension of encoded frozen workloads.
const FrozenExt = ".advperm"

// FileName is the canonical file name of the frozen workload inside a
// frozen directory.
func (f Frozen) FileName() string {
	return f.Family + "-" + f.Name + FrozenExt
}

// frozenMagic leads every encoded frozen workload.
const frozenMagic = "ADVPERM1"

// maxFrozenHeader bounds the JSON header of an encoded frozen
// workload, so a hostile length prefix cannot demand an absurd
// allocation before any real validation runs.
const maxFrozenHeader = 1 << 20

// validate checks the Frozen's internal consistency: identifying
// fields present, Perm a bijection on exactly Nodes elements.
func (f Frozen) validate() error {
	if f.Name == "" || f.Family == "" {
		return fmt.Errorf("workload: frozen permutation needs a name and family, got %q/%q", f.Family, f.Name)
	}
	if strings.ContainsAny(f.Name, ":/") || strings.ContainsAny(f.Family, ":/") {
		return fmt.Errorf("workload: frozen name %q/%q may not contain ':' or '/'", f.Family, f.Name)
	}
	if f.Nodes != len(f.Perm) || f.Nodes == 0 {
		return fmt.Errorf("workload: frozen %s declares %d nodes but carries %d entries", f.WorkloadName(), f.Nodes, len(f.Perm))
	}
	seen := make([]bool, len(f.Perm))
	for i, dst := range f.Perm {
		if dst < 0 || dst >= len(f.Perm) {
			return fmt.Errorf("workload: frozen %s entry %d -> %d out of range [0,%d)", f.WorkloadName(), i, dst, len(f.Perm))
		}
		if seen[dst] {
			return fmt.Errorf("workload: frozen %s is not a permutation: destination %d repeats", f.WorkloadName(), dst)
		}
		seen[dst] = true
	}
	return nil
}

// EncodeFrozen serializes the frozen workload: the magic, a
// varint-length JSON header, and the destination table as varints.
func EncodeFrozen(f Frozen) ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	hdr, err := json.Marshal(f)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(frozenMagic)+len(hdr)+2*binary.MaxVarintLen64+2*len(f.Perm))
	buf = append(buf, frozenMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(hdr)))
	buf = append(buf, hdr...)
	buf = binary.AppendUvarint(buf, uint64(len(f.Perm)))
	for _, dst := range f.Perm {
		buf = binary.AppendUvarint(buf, uint64(dst))
	}
	return buf, nil
}

// DecodeFrozen parses an encoded frozen workload, rejecting truncated,
// trailing-garbage, out-of-range and non-bijective inputs with an
// error — never a panic — so a corrupted checked-in file fails loudly
// and safely.
func DecodeFrozen(data []byte) (Frozen, error) {
	if len(data) < len(frozenMagic) || string(data[:len(frozenMagic)]) != frozenMagic {
		return Frozen{}, fmt.Errorf("workload: not a frozen workload (missing %q magic)", frozenMagic)
	}
	rest := data[len(frozenMagic):]
	hlen, n := binary.Uvarint(rest)
	if n <= 0 || hlen > maxFrozenHeader {
		return Frozen{}, fmt.Errorf("workload: frozen header length invalid")
	}
	rest = rest[n:]
	if uint64(len(rest)) < hlen {
		return Frozen{}, fmt.Errorf("workload: frozen header truncated (%d of %d bytes)", len(rest), hlen)
	}
	var f Frozen
	if err := json.Unmarshal(rest[:hlen], &f); err != nil {
		return Frozen{}, fmt.Errorf("workload: frozen header: %w", err)
	}
	rest = rest[hlen:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return Frozen{}, fmt.Errorf("workload: frozen permutation count invalid")
	}
	rest = rest[n:]
	// Every entry costs at least one byte, so the remaining length
	// bounds any honest count — a hostile one fails before allocating.
	if count > uint64(len(rest)) {
		return Frozen{}, fmt.Errorf("workload: frozen declares %d entries in %d bytes", count, len(rest))
	}
	f.Perm = make([]int, count)
	for i := range f.Perm {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return Frozen{}, fmt.Errorf("workload: frozen permutation truncated at entry %d of %d", i, count)
		}
		if v >= count {
			return Frozen{}, fmt.Errorf("workload: frozen entry %d -> %d out of range [0,%d)", i, v, count)
		}
		f.Perm[i] = int(v)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return Frozen{}, fmt.Errorf("workload: %d trailing bytes after frozen permutation", len(rest))
	}
	if err := f.validate(); err != nil {
		return Frozen{}, err
	}
	return f, nil
}

// frozen indexes the registered frozen workloads by registry name, for
// idempotent re-registration and the regression suite's enumeration.
var frozen = map[string]Frozen{}

// permEqual reports whether two destination tables are identical.
func permEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// permGenerator wraps a literal destination table as a registered
// generator: one packet per node, node i to perm[i], pinned to
// exactly len(perm) nodes by the registry's capability gate.
func permGenerator(name, traffic string, perm []int) Generator {
	return Generator{
		Name: name, Params: "Kind",
		Class: ClassPermutation, Traffic: traffic,
		Nodes: len(perm),
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			pkts := make([]*packet.Packet, len(perm))
			for i, dst := range perm {
				pkts[i] = packet.NewIn(a, i, i, dst, p.Kind)
			}
			return pkts, nil
		},
	}
}

// RegisterFrozen adds the frozen permutation to the registry under
// its "adv:<family>:<name>" workload name. Re-registering an
// identical frozen workload is a no-op (several tests in one binary
// load the same directory); a name collision with different contents,
// or with a non-frozen generator, is an error.
func RegisterFrozen(f Frozen) error {
	if err := f.validate(); err != nil {
		return err
	}
	name := f.WorkloadName()
	mu.Lock()
	defer mu.Unlock()
	if prev, ok := frozen[name]; ok {
		if permEqual(prev.Perm, f.Perm) {
			return nil
		}
		return fmt.Errorf("workload: frozen %s already registered with a different permutation", name)
	}
	if _, dup := generators[name]; dup {
		return fmt.Errorf("workload: generator %q already registered and is not this frozen workload", name)
	}
	traffic := fmt.Sprintf("frozen adversary on %s (rounds >= %d, maxQ >= %d at seed %d)", f.Family, f.Rounds, f.MaxQ, f.Seed)
	generators[name] = permGenerator(name, traffic, f.Perm)
	frozen[name] = f
	return nil
}

// LookupFrozen returns the frozen workload registered under the given
// workload name ("adv:<family>:<name>").
func LookupFrozen(name string) (Frozen, bool) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := frozen[name]
	return f, ok
}

// FrozenNames returns the workload names of every registered frozen
// adversary, sorted — the regression suite's enumeration.
func FrozenNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(frozen))
	for name := range frozen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LoadFrozenDir decodes and registers every *.advperm file under dir
// (sorted, so registration order is deterministic) and returns how
// many registered. A missing directory is zero frozen workloads, not
// an error — a repo without checked-in adversaries stays runnable.
func LoadFrozenDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), FrozenExt) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return loaded, err
		}
		f, err := DecodeFrozen(data)
		if err != nil {
			return loaded, fmt.Errorf("%s: %w", path, err)
		}
		if err := RegisterFrozen(f); err != nil {
			return loaded, fmt.Errorf("%s: %w", path, err)
		}
		loaded++
	}
	return loaded, nil
}

// WriteFrozenFile encodes the frozen workload into dir (created if
// missing) under its canonical file name and returns the path.
func WriteFrozenFile(dir string, f Frozen) (string, error) {
	data, err := EncodeFrozen(f)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, f.FileName())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// RegisterPerm installs (or replaces) a raw destination table as a
// transient named workload — the adversarial search's candidate slot:
// the greedy mutator re-registers one name per evaluation, so unlike
// Register this overwrite is legal. Candidates never appear in the
// frozen index; remove them with Deregister when the search is done.
func RegisterPerm(name string, perm []int) error {
	perm = append([]int(nil), perm...) // the caller keeps mutating its slice
	f := Frozen{Name: "cand", Family: "cand", Nodes: len(perm), Perm: perm}
	if err := f.validate(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if _, isFrozen := frozen[name]; isFrozen {
		return fmt.Errorf("workload: %q is a frozen workload; candidates may not shadow it", name)
	}
	generators[name] = permGenerator(name, "transient adversarial-search candidate", perm)
	return nil
}

// Deregister removes a registered generator (and any frozen index
// entry) by name, reporting whether it existed — the cleanup hook of
// the adversarial search's candidate slots.
func Deregister(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := generators[name]
	delete(generators, name)
	delete(frozen, name)
	return ok
}
