// The registered generators: the coordinate- and graph-defined
// patterns (tornado, local) live here next to the init that registers
// every generator of the package, each mapped to the traffic class —
// and through it the theorem — it exercises.

package workload

import (
	"fmt"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/topology"
)

// Tornado returns the half-wrap adversary on a coordinate grid: every
// node sends to the node whose every coordinate is advanced by
// ⌊extent/2⌋ (mod extent). On the torus each packet travels the full
// diameter and the shorter-arc tie-break sends all of them the same
// way around every ring; on the mesh every packet crosses the bisection.
// It panics unless g implements topology.Coordinated.
func Tornado(g topology.Graph, kind packet.Kind) []*packet.Packet {
	return TornadoInto(nil, g, kind)
}

// TornadoInto is Tornado with packets allocated from arena a
// (heap-allocated when a is nil).
func TornadoInto(a *packet.Arena, g topology.Graph, kind packet.Kind) []*packet.Packet {
	co, ok := g.(topology.Coordinated)
	if !ok {
		panic(fmt.Sprintf("workload: tornado needs grid coordinates, %s has none", g.Name()))
	}
	dims := co.Dims()
	coords := make([]int, dims)
	pkts := make([]*packet.Packet, g.Nodes())
	for node := range pkts {
		for d := 0; d < dims; d++ {
			ext := co.Extent(d)
			coords[d] = (co.Coord(node, d) + ext/2) % ext
		}
		pkts[node] = packet.NewIn(a, node, node, co.NodeAt(coords), kind)
	}
	return pkts
}

// Local generalizes Theorem 3.3's distance-d-local workload from the
// mesh to any point-to-point graph: every node sends one packet to a
// node sampled uniformly from its BFS ball of radius d (self
// included). On the mesh proper it delegates to MeshLocal, preserving
// the paper's reflection-clamped L1 sampling exactly.
func Local(g topology.Graph, d int, seed uint64) []*packet.Packet {
	return LocalInto(nil, g, d, seed)
}

// LocalInto is Local with packets allocated from arena a
// (heap-allocated when a is nil).
func LocalInto(a *packet.Arena, g topology.Graph, d int, seed uint64) []*packet.Packet {
	if d < 1 {
		panic("workload: locality distance must be >= 1")
	}
	if grid, ok := g.(Grid); ok {
		return MeshLocalInto(a, grid, d, seed)
	}
	src := prng.New(seed)
	n := g.Nodes()
	pkts := make([]*packet.Packet, n)
	// BFS scratch, reused across sources: seen is stamped with the
	// current source so it never needs clearing.
	seen := make([]int, n)
	for i := range seen {
		seen[i] = -1
	}
	var ball, next []int
	for node := 0; node < n; node++ {
		ball = append(ball[:0], node)
		seen[node] = node
		frontier := ball
		for depth := 0; depth < d && len(frontier) > 0; depth++ {
			next = next[:0]
			for _, u := range frontier {
				deg := g.Degree(u)
				for s := 0; s < deg; s++ {
					v := g.Neighbor(u, s)
					if seen[v] != node {
						seen[v] = node
						next = append(next, v)
					}
				}
			}
			ball = append(ball, next...)
			frontier = ball[len(ball)-len(next):]
		}
		pkts[node] = packet.NewIn(a, node, node, ball[src.Intn(len(ball))], packet.Transit)
	}
	return pkts
}

func init() {
	Register(Generator{
		Name: "perm", Params: "Kind",
		Class: ClassPermutation, Traffic: "Thm 2.1/2.2: uniformly random permutation, the paradigmatic case of §2.2.1",
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return PermutationInto(a, b.Nodes(), p.Kind, seed), nil
		},
	})
	Register(Generator{
		Name: "ident", Params: "Kind",
		Class: ClassPermutation, Traffic: "degenerate zero-distance permutation (delivery-path edge cases)",
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return IdentityInto(a, b.Nodes(), p.Kind), nil
		},
	})
	Register(Generator{
		Name: "shift", Params: "Kind",
		Class: ClassPermutation, Traffic: "neighbor permutation i -> i+1: minimal-distance, congestion-free baseline",
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return ShiftInto(a, b.Nodes(), p.Kind), nil
		},
	})
	Register(Generator{
		Name: "bitrev", Params: "Kind",
		Class: ClassPermutation, Traffic: "bit-reversal: the classic adversary for deterministic oblivious routing (why phase 1 exists)",
		Needs: NeedsPow2,
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return BitReversalInto(a, b.Nodes(), p.Kind), nil
		},
	})
	Register(Generator{
		Name: "bitcomp", Params: "Kind",
		Class: ClassPermutation, Traffic: "bit-complement i -> ^i: maximal-distance adversary on the binary families",
		Needs: NeedsPow2,
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return BitComplementInto(a, b.Nodes(), p.Kind), nil
		},
	})
	Register(Generator{
		Name: "transpose", Params: "Kind",
		Class: ClassPermutation, Traffic: "√N x √N transpose: the dimension-ordered-routing adversary (§3.4's hard case)",
		Needs: NeedsSquare,
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return TransposeSquareInto(a, b.Nodes(), p.Kind), nil
		},
	})
	Register(Generator{
		Name: "tornado", Params: "Kind",
		Class: ClassPermutation, Traffic: "half-wrap tornado: saturates one direction of every ring of a torus/mesh (§3 adversary)",
		Needs: NeedsCoords,
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return TornadoInto(a, b.Graph, p.Kind), nil
		},
	})
	Register(Generator{
		Name: "relation", Params: "Kind, H",
		Class: ClassRelation, Traffic: "Cor 2.1: partial h-relation (h independent random permutations)",
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return RelationInto(a, b.Nodes(), p.H, p.Kind, seed), nil
		},
	})
	Register(Generator{
		Name: "hotspot", Params: "Kind, Fraction",
		Class: ClassManyOne, Traffic: "Thm 2.6: single hot module, Fraction of nodes reading one shared address",
		Needs: NeedsCombining,
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return HotSpotInto(a, b.Nodes(), p.Fraction, 0, p.Kind, seed), nil
		},
	})
	Register(Generator{
		Name: "khot", Params: "Kind, Fraction, Hot",
		Class: ClassManyOne, Traffic: "Thm 2.6 generalized: Hot shared destinations, combining trees forming toward each",
		Needs: NeedsCombining,
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return KHotInto(a, b.Nodes(), p.Hot, p.Fraction, p.Kind, seed), nil
		},
	})
	Register(Generator{
		Name: "local", Params: "D",
		Class: ClassLocal, Traffic: "Thm 3.3: destinations within distance D (reflected L1 ball on the mesh, BFS ball elsewhere)",
		Needs: NeedsGraph,
		Generate: func(b topology.Built, p Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			return LocalInto(a, b.Graph, p.D, seed), nil
		},
	})
}
