package workload

import (
	"testing"

	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/pram"
)

func TestPermutationIsPermutation(t *testing.T) {
	pkts := Permutation(100, packet.Transit, 5)
	if len(pkts) != 100 {
		t.Fatalf("%d packets", len(pkts))
	}
	seen := make([]bool, 100)
	for i, p := range pkts {
		if p.Src != i || p.ID != i {
			t.Fatalf("packet %d: src=%d", i, p.Src)
		}
		if seen[p.Dst] {
			t.Fatalf("duplicate destination %d", p.Dst)
		}
		seen[p.Dst] = true
	}
}

func TestPermutationSeeded(t *testing.T) {
	a := Permutation(64, packet.Transit, 1)
	b := Permutation(64, packet.Transit, 1)
	c := Permutation(64, packet.Transit, 2)
	diff := false
	for i := range a {
		if a[i].Dst != b[i].Dst {
			t.Fatal("same seed differs")
		}
		if a[i].Dst != c[i].Dst {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds agree")
	}
}

func TestIdentity(t *testing.T) {
	for _, p := range Identity(10, packet.Transit) {
		if p.Src != p.Dst {
			t.Fatal("identity packet not self-addressed")
		}
	}
}

func TestBitReversal(t *testing.T) {
	pkts := BitReversal(8, packet.Transit)
	want := []int{0, 4, 2, 6, 1, 5, 3, 7}
	for i, p := range pkts {
		if p.Dst != want[i] {
			t.Fatalf("rev(%d) = %d, want %d", i, p.Dst, want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two should panic")
		}
	}()
	BitReversal(6, packet.Transit)
}

func TestRelation(t *testing.T) {
	const nodes, h = 50, 4
	pkts := Relation(nodes, h, packet.Transit, 3)
	if len(pkts) != nodes*h {
		t.Fatalf("%d packets", len(pkts))
	}
	perSrc := make(map[int]int)
	perDst := make(map[int]int)
	ids := make(map[int]bool)
	for _, p := range pkts {
		perSrc[p.Src]++
		perDst[p.Dst]++
		if ids[p.ID] {
			t.Fatalf("duplicate id %d", p.ID)
		}
		ids[p.ID] = true
	}
	for node := 0; node < nodes; node++ {
		if perSrc[node] != h || perDst[node] != h {
			t.Fatalf("node %d: %d sources, %d dests", node, perSrc[node], perDst[node])
		}
	}
}

func TestHotSpot(t *testing.T) {
	pkts := HotSpot(200, 0.5, 7, packet.Transit, 9)
	hot := 0
	for _, p := range pkts {
		if p.Kind != packet.ReadRequest {
			t.Fatal("hot spot packets must be promoted to reads")
		}
		if p.Addr == 0 && p.Dst == 7 {
			hot++
		}
	}
	if hot < 60 || hot > 140 {
		t.Fatalf("hot fraction %d/200 far from 0.5", hot)
	}
	for _, p := range HotSpot(50, 1, 3, packet.WriteRequest, 9) {
		if p.Kind != packet.WriteRequest {
			t.Fatal("request kinds must pass through")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad fraction should panic")
		}
	}()
	HotSpot(10, 1.5, 0, packet.ReadRequest, 1)
}

func TestKHotTargetsKDistinctModules(t *testing.T) {
	pkts := KHot(300, 3, 1, packet.Transit, 11)
	dsts := make(map[int]bool)
	addrs := make(map[uint64]bool)
	for _, p := range pkts {
		if p.Kind != packet.ReadRequest {
			t.Fatal("khot packets must be promoted to reads")
		}
		dsts[p.Dst] = true
		addrs[p.Addr] = true
	}
	if len(dsts) != 3 {
		t.Fatalf("khot hit %d destinations, want 3", len(dsts))
	}
	if len(addrs) != 3 {
		t.Fatalf("khot used %d shared addresses at fraction 1, want 3", len(addrs))
	}
}

func TestShiftAndBitComplement(t *testing.T) {
	for i, p := range Shift(10, packet.Transit) {
		if p.Dst != (i+1)%10 {
			t.Fatalf("shift(%d) = %d", i, p.Dst)
		}
	}
	for i, p := range BitComplement(8, packet.Transit) {
		if p.Dst != 7-i {
			t.Fatalf("bitcomp(%d) = %d, want %d", i, p.Dst, 7-i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two should panic")
		}
	}()
	BitComplement(6, packet.Transit)
}

func TestRequestsConversion(t *testing.T) {
	pkts := []*packet.Packet{
		packet.New(0, 2, 9, packet.ReadRequest),
		packet.New(1, 4, 9, packet.WriteRequest),
	}
	pkts[0].Addr = 11
	pkts[1].Addr = 22
	pkts[1].Value = 5
	reqs := Requests(6, pkts)
	if len(reqs) != 6 {
		t.Fatalf("%d requests", len(reqs))
	}
	if reqs[2].Op != pram.OpRead || reqs[2].Addr != 11 {
		t.Fatalf("req[2] = %+v", reqs[2])
	}
	if reqs[4].Op != pram.OpWrite || reqs[4].Value != 5 {
		t.Fatalf("req[4] = %+v", reqs[4])
	}
	if reqs[0].Op != pram.OpNone {
		t.Fatal("idle processors must get OpNone")
	}
}

func TestRandomStepDistinctAddrs(t *testing.T) {
	reqs := RandomStep(100, 1000, false, 4)
	seen := make(map[uint64]bool)
	for _, r := range reqs {
		if r.Op != pram.OpRead {
			t.Fatal("want reads")
		}
		if seen[r.Addr] {
			t.Fatalf("duplicate address %d in EREW step", r.Addr)
		}
		seen[r.Addr] = true
	}
	writes := RandomStep(10, 100, true, 4)
	for _, r := range writes {
		if r.Op != pram.OpWrite {
			t.Fatal("want writes")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("procs > memory should panic")
		}
	}()
	RandomStep(10, 5, false, 1)
}

func TestCRCWStep(t *testing.T) {
	reqs := CRCWStep(10, 42)
	for _, r := range reqs {
		if r.Op != pram.OpRead || r.Addr != 42 {
			t.Fatalf("req = %+v", r)
		}
	}
}

func TestMeshLocalWithinDistance(t *testing.T) {
	g := mesh.New(32)
	for _, d := range []int{1, 3, 8} {
		pkts := MeshLocal(g, d, uint64(d))
		if len(pkts) != g.Nodes() {
			t.Fatalf("%d packets", len(pkts))
		}
		for _, p := range pkts {
			if dist := g.L1(p.Src, p.Dst); dist > d {
				t.Fatalf("d=%d: packet %d->%d at distance %d", d, p.Src, p.Dst, dist)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("d=0 should panic")
		}
	}()
	MeshLocal(g, 0, 1)
}

func TestTranspose(t *testing.T) {
	g := mesh.New(8)
	pkts := Transpose(g)
	if len(pkts) != 64 {
		t.Fatalf("%d packets", len(pkts))
	}
	for _, p := range pkts {
		sr, sc := g.RowCol(p.Src)
		dr, dc := g.RowCol(p.Dst)
		if sr != dc || sc != dr {
			t.Fatalf("packet %d->%d is not a transpose", p.Src, p.Dst)
		}
	}
}

func TestTransposeSquare(t *testing.T) {
	const nodes = 81 // 9x9, works for any square count (torus or mesh)
	pkts := TransposeSquare(nodes, packet.Transit)
	if len(pkts) != nodes {
		t.Fatalf("%d packets", len(pkts))
	}
	seen := make(map[int]bool, nodes)
	for _, p := range pkts {
		sr, sc := p.Src/9, p.Src%9
		dr, dc := p.Dst/9, p.Dst%9
		if sr != dc || sc != dr {
			t.Fatalf("packet %d->%d is not a transpose", p.Src, p.Dst)
		}
		if seen[p.Dst] {
			t.Fatalf("destination %d hit twice; not a permutation", p.Dst)
		}
		seen[p.Dst] = true
	}
}

func TestTransposeSquareRejectsNonSquares(t *testing.T) {
	if IsSquare(10) || !IsSquare(16) || IsSquare(0) {
		t.Fatal("IsSquare misclassifies")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-square count should panic")
		}
	}()
	TransposeSquare(10, packet.Transit)
}

// TestIntoVariantsMatchHeapVariants pins that the arena-allocating
// generators produce the same workload as their heap twins, and that
// the packets really come from the arena.
func TestIntoVariantsMatchHeapVariants(t *testing.T) {
	a := packet.NewArena()
	heapPerm := Permutation(64, packet.Transit, 7)
	arenaPerm := PermutationInto(a, 64, packet.Transit, 7)
	if len(heapPerm) != len(arenaPerm) {
		t.Fatalf("permutation lengths differ: %d vs %d", len(heapPerm), len(arenaPerm))
	}
	for i := range heapPerm {
		h, ar := heapPerm[i], arenaPerm[i]
		if h.ID != ar.ID || h.Src != ar.Src || h.Dst != ar.Dst || h.Kind != ar.Kind {
			t.Fatalf("permutation packet %d differs: %+v vs %+v", i, h, ar)
		}
		if ar != a.At(i) {
			t.Fatalf("permutation packet %d not arena-allocated", i)
		}
	}
	a.Reset()
	heapRel := Relation(32, 3, packet.ReadRequest, 9)
	arenaRel := RelationInto(a, 32, 3, packet.ReadRequest, 9)
	if len(heapRel) != len(arenaRel) || a.Len() != len(arenaRel) {
		t.Fatalf("relation lengths differ: %d vs %d (arena %d)", len(heapRel), len(arenaRel), a.Len())
	}
	for i := range heapRel {
		h, ar := heapRel[i], arenaRel[i]
		if h.ID != ar.ID || h.Src != ar.Src || h.Dst != ar.Dst || h.Kind != ar.Kind {
			t.Fatalf("relation packet %d differs: %+v vs %+v", i, h, ar)
		}
	}
}
