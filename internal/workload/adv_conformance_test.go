// The adversarial workloads ride the existing conformance suite with
// zero per-workload edits: importing internal/advsearch registers the
// structured adv:* patterns, loading sweeps/adversarial/ registers
// every checked-in frozen permutation, and TestWorkloadRegistry-
// Conformance then covers them all through workload.Names(). The
// explicit test below makes the property loud — it fails if the adv:*
// population is empty or if any member dodges the suite.
package workload_test

import (
	"strings"
	"testing"

	_ "pramemu/internal/advsearch"
	"pramemu/internal/workload"
)

func init() {
	// Register the checked-in frozen adversaries so the registry-wide
	// conformance sweep covers them like any other generator.
	if _, err := workload.LoadFrozenDir("../../sweeps/adversarial"); err != nil {
		panic(err)
	}
}

func TestAdvSearchWorkloadConformance(t *testing.T) {
	built := conformanceBuilt(t)
	var adv []string
	for _, name := range workload.Names() {
		if strings.HasPrefix(name, "adv:") {
			adv = append(adv, name)
		}
	}
	if len(adv) < 4 {
		t.Fatalf("adv:* population %v too small: want the structured patterns plus at least one frozen permutation", adv)
	}
	frozen := 0
	for _, name := range adv {
		gen, ok := workload.Lookup(name)
		if !ok {
			t.Fatalf("registry lost %q", name)
		}
		if _, isFrozen := workload.LookupFrozen(name); isFrozen {
			frozen++
		}
		compatible := 0
		for _, b := range built {
			if gen.Check(b) != nil {
				continue
			}
			compatible++
			t.Run(name+"/"+b.Name(), func(t *testing.T) {
				checkGenerator(t, name, gen, b)
			})
		}
		if compatible == 0 {
			t.Errorf("adversarial workload %q is compatible with no conformance topology", name)
		}
	}
	if frozen == 0 {
		t.Error("no frozen adversary under sweeps/adversarial/ reached the registry")
	}
}
