package pancake

import (
	"fmt"

	"pramemu/internal/topology"
)

func init() {
	topology.Register(topology.Family{
		Name:    "pancake",
		Params:  "N = symbol count n in [2,10] (default 5); n! nodes",
		Theorem: "Thm 2.2's Cayley-graph argument on prefix reversals",
		Build: func(p topology.Params) (topology.Built, error) {
			n := topology.DefaultInt(p.N, 5)
			if n < 2 || n > 10 {
				return topology.Built{}, fmt.Errorf("pancake symbol count n must be in [2, 10], got %d", n)
			}
			return topology.Built{Graph: New(n)}, nil
		},
	})
}
