package pancake

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/simnet"
)

func TestBasicShape(t *testing.T) {
	for n, wantDiam := range map[int]int{2: 1, 3: 3, 4: 4, 5: 5, 6: 7} {
		g := New(n)
		nodes := 1
		for i := 2; i <= n; i++ {
			nodes *= i
		}
		if g.Nodes() != nodes {
			t.Fatalf("n=%d: nodes %d, want %d", n, g.Nodes(), nodes)
		}
		if g.Degree(0) != n-1 {
			t.Fatalf("n=%d: degree %d, want %d", n, g.Degree(0), n-1)
		}
		if g.Diameter() != wantDiam {
			t.Fatalf("n=%d: diameter %d, want %d", n, g.Diameter(), wantDiam)
		}
		if g.MaxPathLen() < g.Diameter() {
			t.Fatalf("n=%d: MaxPathLen %d below diameter %d", n, g.MaxPathLen(), g.Diameter())
		}
	}
}

func TestNeighborIsInvolution(t *testing.T) {
	// A prefix reversal undoes itself, so every link is bidirectional
	// with the same slot on both sides.
	g := New(5)
	for u := 0; u < g.Nodes(); u++ {
		for s := 0; s < g.Degree(u); s++ {
			v := g.Neighbor(u, s)
			if v == u {
				t.Fatalf("node %d slot %d is a self-loop", u, s)
			}
			if back := g.Neighbor(v, s); back != u {
				t.Fatalf("reversal not involutive: %d -(%d)-> %d -(%d)-> %d", u, s, v, s, back)
			}
		}
	}
}

func TestGreedyPathsExhaustive(t *testing.T) {
	// Every ordered pair at n=5: the greedy path must terminate
	// within 2n-3 hops at the right node.
	g := New(5)
	bound := g.MaxPathLen()
	for u := 0; u < g.Nodes(); u++ {
		for v := 0; v < g.Nodes(); v++ {
			if d := g.Distance(u, v); d > bound {
				t.Fatalf("path %d->%d took %d hops, bound %d", u, v, d, bound)
			}
		}
	}
}

func TestGreedyAtLeastBFSDistance(t *testing.T) {
	// The greedy path cannot beat the true distance; spot-check
	// against BFS from the identity at n=4 (24 nodes).
	g := New(4)
	dist := make([]int, g.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for s := 0; s < g.Degree(u); s++ {
			v := g.Neighbor(u, s)
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	far := 0
	for v := 0; v < g.Nodes(); v++ {
		if dist[v] > far {
			far = dist[v]
		}
		if got := g.Distance(0, v); got < dist[v] {
			t.Fatalf("greedy 0->%d took %d hops, below true distance %d", v, got, dist[v])
		}
	}
	if far != g.Diameter() {
		t.Fatalf("BFS eccentricity %d != declared diameter %d", far, g.Diameter())
	}
}

func TestValiantPermutationRouting(t *testing.T) {
	g := New(5) // 120 nodes
	perm := prng.New(3).Perm(g.Nodes())
	pkts := make([]*packet.Packet, len(perm))
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.Transit)
	}
	stats, err := simnet.Route(g, pkts, simnet.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeliveredRequests != g.Nodes() {
		t.Fatalf("delivered %d/%d", stats.DeliveredRequests, g.Nodes())
	}
	// Õ(diameter): two greedy phases plus queueing delay.
	if stats.Rounds > 12*g.Diameter() {
		t.Fatalf("rounds %d not Õ(diameter %d)", stats.Rounds, g.Diameter())
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", n)
				}
			}()
			New(n)
		}()
	}
}
