// Package pancake implements the pancake graph, the star graph's
// sibling Cayley graph under the paper's Theorem 2.2 framework: n!
// nodes, one per permutation of n symbols, with node u adjacent to
// the permutations obtained by reversing a prefix of u's label
// (prefix reversals of length 2..n, so degree n-1). Like the star
// graph its diameter grows sub-logarithmically in the network size
// n!, so the universal two-phase routing argument prices a PRAM step
// at Õ(diameter) on it unchanged.
//
// Deterministic paths follow the classic pancake-sorting greedy rule:
// repeatedly place the largest out-of-position element, first flipping
// it to the front and then flipping it into place. The resulting
// unique paths have length at most 2n-3, slightly above the true
// diameter, which the topology declares via MaxPathLen.
package pancake

import (
	"fmt"

	"pramemu/internal/mathx"
)

// diameters holds the known pancake-graph diameters for n = 2..10
// (the pancake-flipping sequence; exact values are only known for
// small n, which is all a simulation can hold anyway).
var diameters = map[int]int{2: 1, 3: 3, 4: 4, 5: 5, 6: 7, 7: 8, 8: 9, 9: 10, 10: 11}

// Graph is an n-pancake graph with precomputed adjacency and
// permutation tables, so routing decisions are O(n) with no
// allocation. Safe for concurrent use after construction.
type Graph struct {
	n     int
	nodes int
	// perms[u*n+i] is symbol i of node u's permutation label.
	perms []uint8
	// adj[u*(n-1)+s] is the rank of u with its length-(s+2) prefix
	// reversed.
	adj []int32
}

// New constructs the n-pancake graph. It panics unless 2 <= n <= 10
// (the same factorial practicality bound as the star graph).
func New(n int) *Graph {
	if n < 2 || n > 10 {
		panic("pancake: n must be in [2, 10]")
	}
	nodes := int(mathx.Factorial(n))
	g := &Graph{
		n:     n,
		nodes: nodes,
		perms: make([]uint8, nodes*n),
		adj:   make([]int32, nodes*(n-1)),
	}
	perm := make([]int, n)
	flipped := make([]int, n)
	for u := 0; u < nodes; u++ {
		mathx.PermUnrank(uint64(u), perm)
		for i, s := range perm {
			g.perms[u*n+i] = uint8(s)
		}
		for s := 0; s < n-1; s++ {
			copy(flipped, perm)
			reverse(flipped[:s+2])
			g.adj[u*(n-1)+s] = int32(mathx.PermRank(flipped))
		}
	}
	return g
}

func reverse(p []int) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}

// N returns the symbol count n.
func (g *Graph) N() int { return g.n }

// Name implements topology.Graph.
func (g *Graph) Name() string { return fmt.Sprintf("pancake(n=%d)", g.n) }

// Nodes implements topology.Graph: n! nodes.
func (g *Graph) Nodes() int { return g.nodes }

// Degree implements topology.Graph: prefix reversals of length 2..n.
func (g *Graph) Degree(node int) int { return g.n - 1 }

// Neighbor implements topology.Graph: slot s reverses the prefix of
// length s+2.
func (g *Graph) Neighbor(node, slot int) int {
	return int(g.adj[node*(g.n-1)+slot])
}

// Diameter implements topology.Graph with the known exact values
// (sub-logarithmic in n!, like the star graph's ⌊3(n-1)/2⌋).
func (g *Graph) Diameter() int { return diameters[g.n] }

// MaxPathLen implements topology.PathBounded: the greedy
// pancake-sorting path uses at most two flips per placed element,
// 2n-3 in total, which can exceed the diameter.
func (g *Graph) MaxPathLen() int { return 2*g.n - 3 }

// Perm writes node's permutation label into out (len >= n).
func (g *Graph) Perm(node int, out []int) {
	for i := 0; i < g.n; i++ {
		out[i] = int(g.perms[node*g.n+i])
	}
}

// NextHop implements topology.Graph with the greedy pancake-sorting
// rule applied to the relative permutation r = dst⁻¹∘node (sorting r
// to the identity by prefix reversals routes node to dst, because a
// prefix reversal acts on both labels alike): find the largest k not
// yet in place; if k is already at the front flip it into place,
// otherwise flip it to the front.
func (g *Graph) NextHop(node, dst, taken int) (slot int, done bool) {
	if node == dst {
		return 0, true
	}
	n := g.n
	cur := g.perms[node*n : node*n+n]
	want := g.perms[dst*n : dst*n+n]
	// home[s] = position of symbol s in dst's label; r[i] = home[cur[i]].
	var home [16]uint8
	for i := 0; i < n; i++ {
		home[want[i]] = uint8(i)
	}
	for k := n - 1; k > 0; k-- {
		// Position j currently holding the symbol whose home is k.
		j := -1
		for i := 0; i <= k; i++ {
			if int(home[cur[i]]) == k {
				j = i
				break
			}
		}
		if j == k {
			continue // already in place
		}
		if j == 0 {
			return k - 1, false // flip prefix of length k+1 into place
		}
		return j - 1, false // flip prefix of length j+1 to the front
	}
	panic("pancake: NextHop found no misplaced symbol with node != dst")
}

// Distance returns the length of the greedy path from u to v.
func (g *Graph) Distance(u, v int) int {
	d := 0
	for u != v {
		slot, done := g.NextHop(u, v, d)
		if done {
			break
		}
		u = g.Neighbor(u, slot)
		d++
		if d > g.MaxPathLen() {
			panic("pancake: greedy routing exceeded its 2n-3 bound")
		}
	}
	return d
}
