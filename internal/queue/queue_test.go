package queue

import (
	"testing"
	"testing/quick"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
)

func mk(id int) *packet.Packet { return packet.New(id, 0, 0, packet.Transit) }

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO(2)
	for i := 0; i < 10; i++ {
		q.Push(mk(i))
	}
	for i := 0; i < 10; i++ {
		p := q.Pop()
		if p == nil || p.ID != i {
			t.Fatalf("pop %d: got %v", i, p)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop of empty FIFO must return nil")
	}
}

func TestFIFOZeroValue(t *testing.T) {
	var q FIFO
	q.Push(mk(1))
	if p := q.Pop(); p == nil || p.ID != 1 {
		t.Fatal("zero-value FIFO must be usable")
	}
}

func TestFIFOInterleaved(t *testing.T) {
	// Interleave pushes and pops so the ring wraps repeatedly.
	q := NewFIFO(4)
	next, expect := 0, 0
	src := prng.New(5)
	for round := 0; round < 1000; round++ {
		if src.Intn(2) == 0 || q.Len() == 0 {
			q.Push(mk(next))
			next++
		} else {
			p := q.Pop()
			if p.ID != expect {
				t.Fatalf("round %d: popped %d, want %d", round, p.ID, expect)
			}
			expect++
		}
	}
	for expect < next {
		if p := q.Pop(); p.ID != expect {
			t.Fatalf("drain: popped %d, want %d", p.ID, expect)
		} else {
			expect++
		}
	}
}

func TestFIFOMaxLen(t *testing.T) {
	q := NewFIFO(4)
	for i := 0; i < 7; i++ {
		q.Push(mk(i))
	}
	for i := 0; i < 3; i++ {
		q.Pop()
	}
	q.Push(mk(7))
	if q.MaxLen() != 7 {
		t.Fatalf("MaxLen = %d, want 7", q.MaxLen())
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
}

func TestFIFOEach(t *testing.T) {
	q := NewFIFO(2)
	for i := 0; i < 5; i++ {
		q.Push(mk(i))
	}
	q.Pop()
	var seen []int
	q.Each(func(p *packet.Packet) bool {
		seen = append(seen, p.ID)
		return true
	})
	want := []int{1, 2, 3, 4}
	if len(seen) != len(want) {
		t.Fatalf("Each saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Each saw %v, want %v", seen, want)
		}
	}
	// Early termination.
	count := 0
	q.Each(func(p *packet.Packet) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("Each did not stop early: %d visits", count)
	}
}

func byID(a, b *packet.Packet) bool { return a.ID < b.ID }

func TestPriorityOrdering(t *testing.T) {
	q := NewPriority(byID)
	ids := []int{5, 3, 8, 1, 9, 2, 7}
	for _, id := range ids {
		q.Push(mk(id))
	}
	prev := -1
	for q.Len() > 0 {
		p := q.Pop()
		if p.ID <= prev {
			t.Fatalf("priority pop out of order: %d after %d", p.ID, prev)
		}
		prev = p.ID
	}
	if q.Pop() != nil {
		t.Fatal("pop of empty priority queue must return nil")
	}
}

func TestPriorityHeapProperty(t *testing.T) {
	check := func(seed uint64) bool {
		src := prng.New(seed)
		q := NewPriority(func(a, b *packet.Packet) bool {
			if a.Hops != b.Hops {
				return a.Hops > b.Hops // furthest-first style
			}
			return a.ID < b.ID
		})
		n := 1 + src.Intn(64)
		for i := 0; i < n; i++ {
			p := mk(i)
			p.Hops = src.Intn(10)
			q.Push(p)
		}
		prevHops, prevID := 1<<30, -1
		for q.Len() > 0 {
			p := q.Pop()
			if p.Hops > prevHops {
				return false
			}
			if p.Hops == prevHops && p.ID < prevID {
				return false
			}
			prevHops, prevID = p.Hops, p.ID
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityMaxLen(t *testing.T) {
	q := NewPriority(byID)
	for i := 0; i < 6; i++ {
		q.Push(mk(i))
	}
	q.Pop()
	q.Pop()
	if q.MaxLen() != 6 || q.Len() != 4 {
		t.Fatalf("MaxLen=%d Len=%d", q.MaxLen(), q.Len())
	}
}

func TestPriorityNilLessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPriority(nil) should panic")
		}
	}()
	NewPriority(nil)
}

func TestPriorityEach(t *testing.T) {
	q := NewPriority(byID)
	for i := 0; i < 5; i++ {
		q.Push(mk(i))
	}
	seen := map[int]bool{}
	q.Each(func(p *packet.Packet) bool {
		seen[p.ID] = true
		return true
	})
	if len(seen) != 5 {
		t.Fatalf("Each visited %d packets, want 5", len(seen))
	}
}

func TestDisciplineInterfaces(t *testing.T) {
	var _ Discipline = (*FIFO)(nil)
	var _ Discipline = (*Priority)(nil)
}
