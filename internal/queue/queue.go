// Package queue implements the two queueing disciplines the paper
// uses — plain FIFO (leveled networks, §2.2.1: "a first-in first-out
// (FIFO) is a simpler queueing strategy ... and is thus preferable")
// and furthest-destination-first (the mesh algorithm of §3.4) — with
// occupancy instrumentation for the paper's queue-size claims.
package queue

import "pramemu/internal/packet"

// Discipline is a queue of packets attached to one directed link.
type Discipline interface {
	// Push enqueues p.
	Push(p *packet.Packet)
	// Pop removes and returns the next packet to traverse the link,
	// or nil if the queue is empty.
	Pop() *packet.Packet
	// Len returns the current occupancy.
	Len() int
	// MaxLen returns the largest occupancy ever observed; this is the
	// "queue size" of a routing scheme (§2.2.1).
	MaxLen() int
	// Each calls f on every queued packet until f returns false; the
	// combining simulators use it to find a mergeable queued packet.
	// Iteration order is FIFO order for FIFO queues and unspecified
	// (but deterministic for a fixed push history) for heaps.
	Each(f func(p *packet.Packet) bool)
}

// FIFO is a first-in first-out discipline backed by a growable ring
// buffer. The ring capacity is always a power of two so that the
// index wrap in Push/Pop — the innermost operations of the round
// engine's hot loop — is a mask, not a division. The zero value is
// ready to use.
type FIFO struct {
	buf        []*packet.Packet
	head, tail int // tail is one past the last element (mod len(buf))
	n          int
	maxLen     int
}

// NewFIFO returns an empty FIFO with room for at least capacity
// packets before the first reallocation.
func NewFIFO(capacity int) *FIFO {
	c := 4
	for c < capacity {
		c *= 2
	}
	return &FIFO{buf: make([]*packet.Packet, c)}
}

// Push implements Discipline.
func (q *FIFO) Push(p *packet.Packet) {
	if q.buf == nil {
		q.buf = make([]*packet.Packet, 4)
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[q.tail] = p
	q.tail = (q.tail + 1) & (len(q.buf) - 1)
	q.n++
	if q.n > q.maxLen {
		q.maxLen = q.n
	}
}

func (q *FIFO) grow() {
	next := make([]*packet.Packet, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = next
	q.head = 0
	q.tail = q.n
}

// Pop implements Discipline.
func (q *FIFO) Pop() *packet.Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return p
}

// Len implements Discipline.
func (q *FIFO) Len() int { return q.n }

// MaxLen implements Discipline.
func (q *FIFO) MaxLen() int { return q.maxLen }

// Each calls f on every queued packet in FIFO order, used by the
// combining simulators to find a mergeable packet already in queue.
func (q *FIFO) Each(f func(p *packet.Packet) bool) {
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		if !f(q.buf[(q.head+i)&mask]) {
			return
		}
	}
}

// LessFunc orders packets for the Priority discipline; it reports
// whether a should be served strictly before b.
type LessFunc func(a, b *packet.Packet) bool

// Priority is a binary-heap discipline ordered by a LessFunc, used for
// the mesh's furthest-destination-first contention rule. Ties must be
// broken by the LessFunc itself (e.g. on packet ID) if deterministic
// replay is required.
type Priority struct {
	less   LessFunc
	heap   []*packet.Packet
	maxLen int
}

// NewPriority returns an empty priority queue using less.
func NewPriority(less LessFunc) *Priority {
	if less == nil {
		panic("queue: NewPriority with nil LessFunc")
	}
	return &Priority{less: less}
}

// Push implements Discipline.
func (q *Priority) Push(p *packet.Packet) {
	q.heap = append(q.heap, p)
	q.up(len(q.heap) - 1)
	if len(q.heap) > q.maxLen {
		q.maxLen = len(q.heap)
	}
}

// Pop implements Discipline.
func (q *Priority) Pop() *packet.Packet {
	if len(q.heap) == 0 {
		return nil
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if len(q.heap) > 0 {
		q.down(0)
	}
	return top
}

// Len implements Discipline.
func (q *Priority) Len() int { return len(q.heap) }

// MaxLen implements Discipline.
func (q *Priority) MaxLen() int { return q.maxLen }

// Each calls f on every queued packet in heap (arbitrary) order.
func (q *Priority) Each(f func(p *packet.Packet) bool) {
	for _, p := range q.heap {
		if !f(p) {
			return
		}
	}
}

func (q *Priority) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Priority) down(i int) {
	n := len(q.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(q.heap[left], q.heap[smallest]) {
			smallest = left
		}
		if right < n && q.less(q.heap[right], q.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
