package algorithms

import (
	"sort"
	"testing"

	"pramemu/internal/emul"
	"pramemu/internal/pram"
	"pramemu/internal/prng"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
)

func TestPrefixSums(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33} {
		m := pram.New(pram.Config{Procs: n, Memory: uint64(n) + 1, Variant: pram.EREW})
		src := prng.New(uint64(n))
		want := make([]int64, n)
		acc := int64(0)
		for i := 0; i < n; i++ {
			v := int64(src.Intn(100) - 50)
			m.Store(uint64(i), v)
			acc += v
			want[i] = acc
		}
		PrefixSums(m, 0, n)
		for i := 0; i < n; i++ {
			if got := m.Load(uint64(i)); got != want[i] {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, got, want[i])
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 31} {
		m := pram.New(pram.Config{Procs: n, Memory: uint64(n) + 1, Variant: pram.EREW})
		m.Store(0, 77)
		Broadcast(m, 0, 1, n)
		for i := 0; i < n; i++ {
			if got := m.Load(1 + uint64(i)); got != 77 {
				t.Fatalf("n=%d: dst[%d] = %d", n, i, got)
			}
		}
	}
}

func TestMaxTournament(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 21} {
		m := pram.New(pram.Config{Procs: n, Memory: uint64(2*n) + 2, Variant: pram.EREW})
		src := prng.New(uint64(n) + 5)
		want := int64(-1 << 40)
		for i := 0; i < n; i++ {
			v := int64(src.Intn(1000) - 500)
			m.Store(uint64(i), v)
			if v > want {
				want = v
			}
		}
		out := uint64(2*n + 1)
		MaxTournament(m, 0, n, out)
		if got := m.Load(out); got != want {
			t.Fatalf("n=%d: max = %d, want %d", n, got, want)
		}
	}
}

func TestMaxConcurrentSingleStep(t *testing.T) {
	const n = 64
	m := pram.New(pram.Config{Procs: n, Memory: n + 1, Variant: pram.CRCWMax})
	src := prng.New(3)
	want := int64(-1)
	for i := 0; i < n; i++ {
		v := int64(src.Intn(10000))
		m.Store(uint64(i), v)
		if v > want {
			want = v
		}
	}
	MaxConcurrent(m, 0, n, n)
	if got := m.Load(n); got != want {
		t.Fatalf("max = %d, want %d", got, want)
	}
	if m.Steps() != 2 {
		t.Fatalf("CRCW max took %d steps, want 2", m.Steps())
	}
}

func TestMaxConcurrentNeedsCRCWMax(t *testing.T) {
	m := pram.New(pram.Config{Procs: 4, Memory: 8, Variant: pram.EREW})
	defer func() {
		if recover() == nil {
			t.Fatal("want variant panic")
		}
	}()
	MaxConcurrent(m, 0, 4, 5)
}

func TestCountTrue(t *testing.T) {
	const n = 40
	m := pram.New(pram.Config{Procs: n, Memory: n + 1, Variant: pram.CRCWSum})
	want := int64(0)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			m.Store(uint64(i), 1)
			want++
		}
	}
	CountTrue(m, 0, n, n)
	if got := m.Load(n); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestListRank(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 30} {
		m := pram.New(pram.Config{Procs: n, Memory: uint64(2 * n), Variant: pram.CREW})
		// Build a random list: permutation order defines successor.
		order := prng.New(uint64(n) + 9).Perm(n)
		next := make([]int64, n)
		for pos, node := range order {
			if pos+1 < n {
				next[node] = int64(order[pos+1])
			} else {
				next[node] = -1
			}
		}
		for i, v := range next {
			m.Store(uint64(i), v)
		}
		ListRank(m, 0, uint64(n), n)
		for pos, node := range order {
			want := int64(n - 1 - pos)
			if got := m.Load(uint64(n + node)); got != want {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, node, got, want)
			}
		}
	}
}

func TestListRankNeedsCREW(t *testing.T) {
	m := pram.New(pram.Config{Procs: 4, Memory: 8, Variant: pram.EREW})
	defer func() {
		if recover() == nil {
			t.Fatal("want variant panic")
		}
	}()
	ListRank(m, 0, 4, 4)
}

func TestOddEvenMergeSort(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64} {
		m := pram.New(pram.Config{Procs: n, Memory: uint64(n), Variant: pram.EREW})
		src := prng.New(uint64(n) + 1)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(src.Intn(1000) - 500)
			m.Store(uint64(i), vals[i])
		}
		OddEvenMergeSort(m, 0, n)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for i, want := range vals {
			if got := m.Load(uint64(i)); got != want {
				t.Fatalf("n=%d: sorted[%d] = %d, want %d", n, i, got, want)
			}
		}
	}
}

func TestOddEvenMergeSortPanicsNonPowerOfTwo(t *testing.T) {
	m := pram.New(pram.Config{Procs: 6, Memory: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("want power-of-two panic")
		}
	}()
	OddEvenMergeSort(m, 0, 6)
}

func TestMatMul(t *testing.T) {
	const n = 5
	m := pram.New(pram.Config{Procs: n * n, Memory: 3 * n * n, Variant: pram.CREW})
	src := prng.New(17)
	var a, b [n][n]int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i][j] = int64(src.Intn(10) - 5)
			b[i][j] = int64(src.Intn(10) - 5)
			m.Store(uint64(i*n+j), a[i][j])
			m.Store(uint64(n*n+i*n+j), b[i][j])
		}
	}
	MatMul(m, 0, n*n, 2*n*n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want int64
			for k := 0; k < n; k++ {
				want += a[i][k] * b[k][j]
			}
			if got := m.Load(uint64(2*n*n + i*n + j)); got != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestWrongProcCountPanics(t *testing.T) {
	m := pram.New(pram.Config{Procs: 3, Memory: 16})
	defer func() {
		if recover() == nil {
			t.Fatal("want processor-count panic")
		}
	}()
	PrefixSums(m, 0, 4)
}

// TestPrefixSumsThroughStarEmulation is the end-to-end check of the
// paper's promise: the same EREW program, run through the star-graph
// emulator, computes the same answer, and each PRAM step costs Õ(n)
// network rounds rather than 1.
func TestPrefixSumsThroughStarEmulation(t *testing.T) {
	const n = 24 // star n=4 has 24 nodes
	b, err := topology.Build("star", topology.Params{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	net, err := emul.NewTopologyNetwork(b)
	if err != nil {
		t.Fatal(err)
	}
	e, err := emul.New(net, emul.Config{Memory: 64, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	m := pram.New(pram.Config{Procs: n, Memory: 64, Variant: pram.EREW, Executor: e})
	for i := 0; i < n; i++ {
		m.Store(uint64(i), 1)
	}
	PrefixSums(m, 0, n)
	for i := 0; i < n; i++ {
		if got := m.Load(uint64(i)); got != int64(i+1) {
			t.Fatalf("prefix[%d] = %d through emulation", i, got)
		}
	}
	if m.Time() <= int64(m.Steps()) {
		t.Fatalf("emulated time %d should exceed step count %d", m.Time(), m.Steps())
	}
}
