package algorithms

import "pramemu/internal/pram"

// Compact stably moves the values val[i] (at val+i) whose flags
// flag[i] (at flag+i) are nonzero to the front of out (at out+i), and
// writes the surviving count to countAddr. It composes three phases:
// flag copy, parallel prefix sums over the flags (computing each
// survivor's output rank), and a scatter — the canonical PRAM stream
// compaction. scratch must point at n unused words.
// Variant: EREW. Processors: n. Steps: 2 + 3⌈log2 n⌉ + 4.
func Compact(m *pram.Machine, val, flag, scratch, out, countAddr uint64, n int) {
	requireProcs(m, n, "Compact")
	// Phase 1: copy flags (normalized to 0/1) into scratch.
	m.Run(func(p *pram.Proc) {
		i := uint64(p.ID())
		f := p.Read(flag + i)
		if f != 0 {
			p.Write(scratch+i, 1)
		} else {
			p.Write(scratch+i, 0)
		}
	})
	// Phase 2: exclusive ranks via inclusive prefix sums.
	PrefixSums(m, scratch, n)
	// Phase 3: scatter survivors to their ranks; the last processor
	// also publishes the total count.
	m.Run(func(p *pram.Proc) {
		i := uint64(p.ID())
		f := p.Read(flag + i)
		v := p.Read(val + i)
		rank := p.Read(scratch + i) // inclusive: position+1 for survivors
		if f != 0 {
			p.Write(out+uint64(rank-1), v)
		} else {
			p.Step()
		}
		if int(i) == n-1 {
			p.Write(countAddr, rank)
		} else {
			p.Step()
		}
	})
}

// InnerProduct writes Σ a[i]*b[i] to out in three steps using
// sum-combining concurrent writes — the kind of constant-time
// primitive that makes the CRCW PRAM strictly stronger and motivates
// emulating it (Theorem 2.6). Variant: CRCWSum. Processors: n.
func InnerProduct(m *pram.Machine, a, b, out uint64, n int) {
	requireProcs(m, n, "InnerProduct")
	if m.Variant() != pram.CRCWSum {
		panic("algorithms: InnerProduct needs a CRCW-sum machine")
	}
	m.Run(func(p *pram.Proc) {
		i := uint64(p.ID())
		av := p.Read(a + i)
		bv := p.Read(b + i)
		p.Write(out, av*bv)
	})
}
