package algorithms

import (
	"testing"

	"pramemu/internal/pram"
	"pramemu/internal/prng"
)

func TestCompact(t *testing.T) {
	for _, n := range []int{1, 2, 8, 20, 33} {
		m := pram.New(pram.Config{Procs: n, Memory: uint64(4*n) + 2, Variant: pram.EREW})
		val := uint64(0)
		flag := uint64(n)
		scratch := uint64(2 * n)
		out := uint64(3 * n)
		countAddr := uint64(4 * n)
		src := prng.New(uint64(n) + 3)
		var want []int64
		for i := 0; i < n; i++ {
			v := int64(src.Intn(100))
			m.Store(val+uint64(i), v)
			if src.Intn(2) == 1 {
				m.Store(flag+uint64(i), 1)
				want = append(want, v)
			}
		}
		Compact(m, val, flag, scratch, out, countAddr, n)
		if got := m.Load(countAddr); got != int64(len(want)) {
			t.Fatalf("n=%d: count = %d, want %d", n, got, len(want))
		}
		for i, w := range want {
			if got := m.Load(out + uint64(i)); got != w {
				t.Fatalf("n=%d: out[%d] = %d, want %d", n, i, got, w)
			}
		}
	}
}

func TestCompactAllAndNone(t *testing.T) {
	const n = 10
	for _, all := range []bool{true, false} {
		m := pram.New(pram.Config{Procs: n, Memory: 4*n + 2, Variant: pram.EREW})
		for i := 0; i < n; i++ {
			m.Store(uint64(i), int64(i))
			if all {
				m.Store(uint64(n+i), 7) // any nonzero flag counts
			}
		}
		Compact(m, 0, n, 2*n, 3*n, 4*n, n)
		wantCount := int64(0)
		if all {
			wantCount = n
		}
		if got := m.Load(4 * n); got != wantCount {
			t.Fatalf("all=%v: count = %d", all, got)
		}
		if all {
			for i := 0; i < n; i++ {
				if m.Load(uint64(3*n+i)) != int64(i) {
					t.Fatalf("identity compaction broke order at %d", i)
				}
			}
		}
	}
}

func TestInnerProduct(t *testing.T) {
	const n = 32
	m := pram.New(pram.Config{Procs: n, Memory: 2*n + 1, Variant: pram.CRCWSum})
	src := prng.New(5)
	var want int64
	for i := 0; i < n; i++ {
		a := int64(src.Intn(20) - 10)
		b := int64(src.Intn(20) - 10)
		m.Store(uint64(i), a)
		m.Store(uint64(n+i), b)
		want += a * b
	}
	InnerProduct(m, 0, n, 2*n, n)
	if got := m.Load(2 * n); got != want {
		t.Fatalf("inner product = %d, want %d", got, want)
	}
	if m.Steps() != 3 {
		t.Fatalf("steps = %d, want 3", m.Steps())
	}
}

func TestInnerProductNeedsCRCWSum(t *testing.T) {
	m := pram.New(pram.Config{Procs: 4, Memory: 16, Variant: pram.CREW})
	defer func() {
		if recover() == nil {
			t.Fatal("want variant panic")
		}
	}()
	InnerProduct(m, 0, 4, 8, 4)
}
