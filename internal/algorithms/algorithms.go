// Package algorithms is a library of classic PRAM programs — the
// "sorting, graph and matrix problems" the paper's introduction cites
// as the PRAM's raison d'être [5]. Every algorithm is written against
// the pram.Proc API and therefore runs unchanged on the ideal
// unit-cost machine or through any network emulator, which is exactly
// the portability the emulation theorems promise.
//
// Each function documents its required machine variant, processor
// count and PRAM step complexity; all panic if the machine is
// mis-sized rather than silently computing garbage.
package algorithms

import (
	"fmt"
	"math/bits"

	"pramemu/internal/pram"
)

func requireProcs(m *pram.Machine, n int, name string) {
	if m.Procs() != n {
		panic(fmt.Sprintf("algorithms: %s needs exactly %d processors, machine has %d",
			name, n, m.Procs()))
	}
}

// ceilLog2 returns ⌈log2 n⌉ for n >= 1.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// PrefixSums replaces x[i] (stored at base+i, 0 <= i < n) with
// x[0]+...+x[i] using the Hillis–Steele doubling scheme.
// Variant: EREW. Processors: n. Steps: 3⌈log2 n⌉.
func PrefixSums(m *pram.Machine, base uint64, n int) {
	requireProcs(m, n, "PrefixSums")
	m.Run(func(p *pram.Proc) {
		i := p.ID()
		for stride := 1; stride < n; stride *= 2 {
			var add int64
			if i >= stride {
				add = p.Read(base + uint64(i-stride))
			} else {
				p.Step()
			}
			cur := p.Read(base + uint64(i))
			p.Write(base+uint64(i), cur+add)
		}
	})
}

// Broadcast copies the value at src into dst+i for every i < n by
// recursive doubling. Variant: EREW. Processors: n.
// Steps: 2(⌈log2 n⌉+1).
func Broadcast(m *pram.Machine, src, dst uint64, n int) {
	requireProcs(m, n, "Broadcast")
	m.Run(func(p *pram.Proc) {
		i := p.ID()
		if i == 0 {
			v := p.Read(src)
			p.Write(dst, v)
		} else {
			p.Step()
			p.Step()
		}
		for stride := 1; stride < n; stride *= 2 {
			if i >= stride && i < 2*stride {
				v := p.Read(dst + uint64(i-stride))
				p.Write(dst+uint64(i), v)
			} else {
				p.Step()
				p.Step()
			}
		}
	})
}

// MaxTournament writes max(x[0..n-1]) (x at base) to out via a
// binary reduction tree. Variant: EREW. Processors: n.
// Steps: 1 + 2⌈log2 n⌉ + 1. The input array is left intact; scratch
// space at base+n..base+2n-1 is used for the tree.
func MaxTournament(m *pram.Machine, base uint64, n int, out uint64) {
	requireProcs(m, n, "MaxTournament")
	scratch := base + uint64(n)
	m.Run(func(p *pram.Proc) {
		i := p.ID()
		v := p.Read(base + uint64(i))
		p.Write(scratch+uint64(i), v)
		for stride := 1; stride < n; stride *= 2 {
			active := i%(2*stride) == 0 && i+stride < n
			if active {
				other := p.Read(scratch + uint64(i+stride))
				if other > v {
					v = other
				}
				p.Write(scratch+uint64(i), v)
			} else {
				p.Step()
				p.Step()
			}
		}
		if i == 0 {
			p.Write(out, v)
		} else {
			p.Step()
		}
	})
}

// MaxConcurrent writes max(x[0..n-1]) to out in a single PRAM step
// using the combining power of a concurrent-write machine — the
// constant-time operation that motivates CRCW emulation (Thm 2.6).
// Variant: CRCWMax. Processors: n. Steps: 2.
func MaxConcurrent(m *pram.Machine, base uint64, n int, out uint64) {
	requireProcs(m, n, "MaxConcurrent")
	if m.Variant() != pram.CRCWMax {
		panic("algorithms: MaxConcurrent needs a CRCW-max machine")
	}
	m.Run(func(p *pram.Proc) {
		v := p.Read(base + uint64(p.ID()))
		p.Write(out, v)
	})
}

// CountTrue writes the number of nonzero flags among flag[0..n-1]
// (at base) to out in two steps using sum-combining concurrent
// writes. Variant: CRCWSum. Processors: n. Steps: 2.
func CountTrue(m *pram.Machine, base uint64, n int, out uint64) {
	requireProcs(m, n, "CountTrue")
	if m.Variant() != pram.CRCWSum {
		panic("algorithms: CountTrue needs a CRCW-sum machine")
	}
	m.Run(func(p *pram.Proc) {
		v := p.Read(base + uint64(p.ID()))
		if v != 0 {
			p.Write(out, 1)
		} else {
			p.Step()
		}
	})
}

// ListRank computes, for every element of a linked list, its distance
// to the end of the list, by pointer jumping. next[i] (at next+i)
// holds the successor index or -1; on return rank[i] (at rank+i)
// holds the number of links from i to the terminal element.
// Variant: CREW (pointer jumping reads shared successors).
// Processors: n. Steps: 6⌈log2 n⌉.
func ListRank(m *pram.Machine, next, rank uint64, n int) {
	requireProcs(m, n, "ListRank")
	if m.Variant() == pram.EREW {
		panic("algorithms: ListRank needs at least CREW")
	}
	m.Run(func(p *pram.Proc) {
		i := p.ID()
		ni := p.Read(next + uint64(i))
		if ni >= 0 {
			p.Write(rank+uint64(i), 1)
		} else {
			p.Write(rank+uint64(i), 0)
		}
		for it := 0; it < ceilLog2(n); it++ {
			ni = p.Read(next + uint64(i))
			if ni >= 0 {
				rn := p.Read(rank + uint64(ni))
				nn := p.Read(next + uint64(ni))
				ri := p.Read(rank + uint64(i))
				p.Write(rank+uint64(i), ri+rn)
				p.Write(next+uint64(i), nn)
			} else {
				for s := 0; s < 5; s++ {
					p.Step()
				}
			}
		}
	})
}

// OddEvenMergeSort sorts x[0..n-1] (at base) ascending with Batcher's
// odd-even merge network; n must be a power of two.
// Variant: EREW (partner reads pair up disjointly each step).
// Processors: n. Steps: O(log^2 n).
func OddEvenMergeSort(m *pram.Machine, base uint64, n int) {
	requireProcs(m, n, "OddEvenMergeSort")
	if n&(n-1) != 0 {
		panic("algorithms: OddEvenMergeSort needs a power-of-two size")
	}
	m.Run(func(p *pram.Proc) {
		i := p.ID()
		for k := 2; k <= n; k *= 2 {
			for j := k / 2; j >= 1; j /= 2 {
				partner := i ^ j
				mine := p.Read(base + uint64(i))
				theirs := p.Read(base + uint64(partner))
				ascending := i&k == 0
				keepMin := (i < partner) == ascending
				out := mine
				if keepMin {
					if theirs < out {
						out = theirs
					}
				} else {
					if theirs > out {
						out = theirs
					}
				}
				p.Write(base+uint64(i), out)
			}
		}
	})
}

// MatMul computes the n x n product C = A * B with one processor per
// output cell. A at a+i*n+k, B at b+k*n+j, C at c+i*n+j.
// Variant: CREW (row/column values are read concurrently).
// Processors: n*n. Steps: 2n+1.
func MatMul(m *pram.Machine, a, b, c uint64, n int) {
	requireProcs(m, n*n, "MatMul")
	if m.Variant() == pram.EREW {
		panic("algorithms: MatMul needs at least CREW")
	}
	m.Run(func(p *pram.Proc) {
		i := p.ID() / n
		j := p.ID() % n
		var sum int64
		for k := 0; k < n; k++ {
			av := p.Read(a + uint64(i*n+k))
			bv := p.Read(b + uint64(k*n+j))
			sum += av * bv
		}
		p.Write(c+uint64(i*n+j), sum)
	})
}
