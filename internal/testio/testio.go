// Package testio provides test helpers for exercising the cmd/ and
// examples/ binaries in-process: their main paths print to os.Stdout,
// so smoke tests swap it for a pipe and assert on the captured text.
package testio

import (
	"io"
	"os"
	"testing"
)

// CaptureStdout runs f with os.Stdout redirected into a pipe and
// returns everything written. os.Stdout is restored before returning,
// including when f panics (the panic propagates).
func CaptureStdout(t testing.TB, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("testio: pipe: %v", err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	defer func() {
		os.Stdout = old
		w.Close() // no-op if already closed
	}()
	f()
	if err := w.Close(); err != nil {
		t.Fatalf("testio: close pipe: %v", err)
	}
	return <-done
}
